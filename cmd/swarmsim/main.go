// swarmsim runs one or more benchmarks on a simulated Swarm machine and
// reports detailed statistics. Multi-benchmark invocations (a comma list
// or -app all) fan out over -workers host goroutines; per-app reports are
// printed in the order the apps were requested, identical for every
// worker count.
//
// Usage:
//
//	swarmsim -app sssp -cores 64 -scale small
//	swarmsim -app silo -cores 16 -impl parallel
//	swarmsim -app astar -cores 16 -trace 500
//	swarmsim -app all -cores 64 -workers 8
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strings"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/harness"
	"github.com/swarm-sim/swarm/internal/noc"
)

func main() {
	app := flag.String("app", "sssp",
		"benchmark: "+strings.Join(bench.AppNames(), ", ")+"; a comma list; or all")
	cores := flag.Int("cores", 64, "core count (machine scales per Table 3)")
	impl := flag.String("impl", "swarm", "implementation: swarm, serial, parallel")
	scaleF := flag.String("scale", "small", "input scale: tiny, small, medium, large")
	cq := flag.Int("commitq", 0, "override commit queue entries per core")
	gvt := flag.Uint64("gvt", 0, "override GVT update period (cycles)")
	trace := flag.Uint64("trace", 0, "emit a per-tile trace sample every N cycles")
	seed := flag.Int64("seed", 1, "enqueue-placement seed (random mapper only)")
	mapper := flag.String("mapper", "random",
		"task-mapping policy: "+strings.Join(core.MapperNames(), ", "))
	backendF := flag.String("backend", "sim",
		"execution backend: "+strings.Join(core.BackendNames(), ", ")+
			" (native rt backends report wall-clock, not cycles)")
	phases := flag.Bool("phases", false,
		"print per-phase statistics for session (multi-phase) benchmarks")
	csvOut := flag.Bool("csv", false,
		"emit one machine-readable CSV row per app instead of the report (-impl swarm only; swarmd serves the same format)")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent simulations for multi-benchmark runs")
	simWorkers := flag.Int("simworkers", 1,
		"shard one simulated machine across N goroutines (results are bit-identical; 1 = single-threaded)")
	flag.Parse()

	// Validate every selector flag up front against the registries, before
	// any input generation runs: a typo fails in milliseconds with the
	// valid options in the message instead of minutes later without them.
	scale, err := harness.ValidateScale(*scaleF)
	if err != nil {
		log.Fatal(err)
	}
	names, err := harness.ResolveApps(*app)
	if err != nil {
		log.Fatal(err)
	}
	if err := harness.ValidateMapper(*mapper); err != nil {
		log.Fatal(err)
	}
	if err := harness.ValidateCores(*cores); err != nil {
		log.Fatal(err)
	}
	if err := harness.ValidateBackend(*backendF); err != nil {
		log.Fatal(err)
	}
	if err := harness.ValidateSimWorkers(*simWorkers); err != nil {
		log.Fatal(err)
	}
	if *csvOut && *impl != "swarm" {
		log.Fatalf("-csv requires -impl swarm (have %q)", *impl)
	}

	// Construct the requested apps only (input generation and host
	// references are the startup cost, so don't pay them for apps that
	// never run). Names are already validated, so New cannot fail.
	apps := make([]bench.Benchmark, len(names))
	for i, name := range names {
		b, err := bench.New(name, scale)
		if err != nil {
			log.Fatal(err)
		}
		apps[i] = b
	}

	run := func(w io.Writer, b bench.Benchmark) error {
		switch *impl {
		case "serial":
			cyc, err := b.RunSerial(*cores)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s serial on a %d-core machine: %d cycles (verified)\n", b.Name(), *cores, cyc)
		case "parallel":
			if !b.HasParallel() {
				return fmt.Errorf("%s has no software-parallel version (as in the paper)", b.Name())
			}
			cyc, err := b.RunParallel(*cores)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s software-parallel on %d cores: %d cycles (verified)\n", b.Name(), *cores, cyc)
		case "swarm":
			cfg := core.DefaultConfig(*cores)
			cfg.Seed = *seed
			cfg.Mapper = *mapper
			cfg.Backend = *backendF
			cfg.SimWorkers = *simWorkers
			if *cq > 0 {
				cfg.CommitQPerCore = *cq
			}
			if *gvt > 0 {
				cfg.GVTPeriod = *gvt
			}
			cfg.TraceInterval = *trace
			var st core.Stats
			if pb, ok := b.(bench.Phased); ok && *phases {
				phs, err := pb.RunSwarmPhases(cfg)
				if err != nil {
					return err
				}
				st = phs[len(phs)-1].Cumulative
				if !*csvOut {
					printPhases(w, b.Name(), phs)
				}
			} else {
				var err error
				st, err = b.RunSwarm(cfg)
				if err != nil {
					return err
				}
				if *phases && !*csvOut {
					fmt.Fprintf(w, "%s is single-phase; -phases adds nothing\n", b.Name())
				}
			}
			if *csvOut {
				fmt.Fprintln(w, harness.StatsCSVRow(b.Name(), st))
				return nil
			}
			printStats(w, b.Name(), st)
			if *trace > 0 {
				harness.PrintFig18(w, st, 40)
			}
		default:
			return fmt.Errorf("unknown impl %q", *impl)
		}
		return nil
	}

	// One buffer per app: workers deposit output by index, so stdout reads
	// in request order no matter which simulation finishes first. Errors
	// are collected per app (never returned to the pool, which would stop
	// a sequential run early but not a concurrent one). Every completed
	// report prints and every failure is reported — one bad app no longer
	// discards the runs that already succeeded — then the process exits
	// non-zero exactly once.
	bufs := make([]bytes.Buffer, len(apps))
	errs := make([]error, len(apps))
	pool := harness.NewPool(*workers)
	pool.Run(len(apps),
		func(i int) string { return apps[i].Name() },
		func(i int) error { errs[i] = run(&bufs[i], apps[i]); return nil })
	if *csvOut {
		fmt.Println(harness.StatsCSVHeader)
	}
	failed := 0
	for i := range bufs {
		os.Stdout.Write(bufs[i].Bytes())
		if errs[i] != nil {
			failed++
			fmt.Fprintf(os.Stderr, "swarmsim: %s: %v\n", apps[i].Name(), errs[i])
		}
	}
	if failed > 0 {
		log.Fatalf("%d of %d runs failed", failed, len(apps))
	}
}

// printPhases reports each quiescence-to-quiescence phase of a session
// benchmark before the cumulative report.
func printPhases(w io.Writer, app string, phs []core.PhaseStats) {
	fmt.Fprintf(w, "%s session: %d phases\n", app, len(phs))
	fmt.Fprintf(w, "  %5s %12s %10s %8s %8s %8s %8s\n",
		"phase", "cycles", "commits", "aborts", "spilled", "tq_occ", "cq_occ")
	for _, ph := range phs {
		fmt.Fprintf(w, "  %5d %12d %10d %8d %8d %8.1f %8.1f\n",
			ph.Phase, ph.Cycles, ph.Commits, ph.Aborts, ph.SpilledTasks,
			ph.AvgTaskQueueOcc, ph.AvgCommitQueueOcc)
	}
}

func printStats(w io.Writer, app string, st core.Stats) {
	if st.Backend != "" && st.Backend != "sim" {
		printNativeStats(w, app, st)
		return
	}
	fmt.Fprintf(w, "%s on %d-core Swarm (verified)\n", app, st.Cores)
	fmt.Fprintf(w, "  cycles            %12d\n", st.Cycles)
	fmt.Fprintf(w, "  commits           %12d\n", st.Commits)
	fmt.Fprintf(w, "  aborts            %12d (%.1f%% of dispatches)\n", st.Aborts,
		100*float64(st.Aborts)/float64(max64(st.Dequeues, 1)))
	fmt.Fprintf(w, "  spilled tasks     %12d\n", st.SpilledTasks)
	fmt.Fprintf(w, "  enqueue NACKs     %12d\n", st.NACKs)
	tot := float64(st.TotalCoreCycles())
	fmt.Fprintf(w, "  core cycles: %.1f%% committed, %.1f%% aborted, %.1f%% spill, %.1f%% stall\n",
		100*float64(st.CommittedCycles)/tot, 100*float64(st.AbortedCycles)/tot,
		100*float64(st.SpillCycles)/tot, 100*float64(st.StallCycles)/tot)
	fmt.Fprintf(w, "  avg occupancy: task queue %.0f, commit queue %.0f\n",
		st.AvgTaskQueueOcc, st.AvgCommitQueueOcc)
	fmt.Fprintf(w, "  mapper %s: task-queue imbalance %.2f (max/mean), stolen tasks %d\n",
		st.Mapper, st.TaskQOccImbalance(), st.StolenTasks)
	fmt.Fprintf(w, "  bloom checks      %12d (VT compares: %d)\n", st.BloomChecks, st.VTCompares)
	fmt.Fprintf(w, "  NoC GB/s per tile: mem %.2f, enqueue %.2f, abort %.2f, gvt %.2f\n",
		st.TrafficGBps(noc.ClassMem), st.TrafficGBps(noc.ClassEnqueue),
		st.TrafficGBps(noc.ClassAbort), st.TrafficGBps(noc.ClassGVT))
	fmt.Fprintf(w, "  cache: %d loads, %d stores, %.1f%% L1 hits, %d mem accesses\n",
		st.Cache.Loads, st.Cache.Stores,
		100*float64(st.Cache.L1Hits)/float64(max64(st.Cache.Loads, 1)), st.Cache.MemAccesses)
}

// printNativeStats reports a native-runtime (-backend rt*) run: the
// engine executes guest tasks on host goroutines, so the meaningful
// numbers are wall-clock and speculation counters, not cycles.
func printNativeStats(w io.Writer, app string, st core.Stats) {
	fmt.Fprintf(w, "%s on %d-worker %s runtime (verified)\n", app, st.Cores, st.Backend)
	fmt.Fprintf(w, "  wall time         %12.3f ms\n", float64(st.WallNS)/1e6)
	fmt.Fprintf(w, "  commits           %12d\n", st.Commits)
	fmt.Fprintf(w, "  aborts            %12d (retries %d)\n", st.Aborts, st.Retries)
	fmt.Fprintf(w, "  enqueues          %12d (dequeues %d)\n", st.Enqueues, st.Dequeues)
	if st.WallNS > 0 {
		fmt.Fprintf(w, "  throughput        %12.0f committed tasks/s\n",
			float64(st.Commits)/(float64(st.WallNS)/1e9))
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
