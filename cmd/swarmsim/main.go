// swarmsim runs one benchmark on a simulated Swarm machine and reports
// detailed statistics.
//
// Usage:
//
//	swarmsim -app sssp -cores 64 -scale small
//	swarmsim -app silo -cores 16 -impl parallel
//	swarmsim -app astar -cores 16 -trace 500
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/harness"
	"github.com/swarm-sim/swarm/internal/noc"
)

func main() {
	app := flag.String("app", "sssp", "benchmark: bfs, sssp, astar, msf, des, silo")
	cores := flag.Int("cores", 64, "core count (machine scales per Table 3)")
	impl := flag.String("impl", "swarm", "implementation: swarm, serial, parallel")
	scaleF := flag.String("scale", "small", "input scale: tiny, small, medium")
	cq := flag.Int("commitq", 0, "override commit queue entries per core")
	gvt := flag.Uint64("gvt", 0, "override GVT update period (cycles)")
	trace := flag.Uint64("trace", 0, "emit a per-tile trace sample every N cycles")
	seed := flag.Int64("seed", 1, "enqueue-placement seed")
	flag.Parse()

	var scale harness.Scale
	switch *scaleF {
	case "tiny":
		scale = harness.ScaleTiny
	case "small":
		scale = harness.ScaleSmall
	case "medium":
		scale = harness.ScaleMedium
	default:
		log.Fatalf("unknown scale %q", *scaleF)
	}
	suite := harness.NewSuite(scale)
	var b bench.Benchmark
	for _, cand := range suite.Benchmarks {
		if cand.Name() == *app {
			b = cand
		}
	}
	if b == nil {
		log.Fatalf("unknown app %q (want bfs, sssp, astar, msf, des or silo)", *app)
	}

	switch *impl {
	case "serial":
		cyc, err := b.RunSerial(*cores)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s serial on a %d-core machine: %d cycles (verified)\n", *app, *cores, cyc)
	case "parallel":
		if !b.HasParallel() {
			log.Fatalf("%s has no software-parallel version (as in the paper)", *app)
		}
		cyc, err := b.RunParallel(*cores)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s software-parallel on %d cores: %d cycles (verified)\n", *app, *cores, cyc)
	case "swarm":
		cfg := core.DefaultConfig(*cores)
		cfg.Seed = *seed
		if *cq > 0 {
			cfg.CommitQPerCore = *cq
		}
		if *gvt > 0 {
			cfg.GVTPeriod = *gvt
		}
		cfg.TraceInterval = *trace
		st, err := b.RunSwarm(cfg)
		if err != nil {
			log.Fatal(err)
		}
		printStats(*app, st)
		if *trace > 0 {
			harness.PrintFig18(os.Stdout, st, 40)
		}
	default:
		log.Fatalf("unknown impl %q", *impl)
	}
}

func printStats(app string, st core.Stats) {
	fmt.Printf("%s on %d-core Swarm (verified)\n", app, st.Cores)
	fmt.Printf("  cycles            %12d\n", st.Cycles)
	fmt.Printf("  commits           %12d\n", st.Commits)
	fmt.Printf("  aborts            %12d (%.1f%% of dispatches)\n", st.Aborts,
		100*float64(st.Aborts)/float64(max64(st.Dequeues, 1)))
	fmt.Printf("  spilled tasks     %12d\n", st.SpilledTasks)
	fmt.Printf("  enqueue NACKs     %12d\n", st.NACKs)
	tot := float64(st.TotalCoreCycles())
	fmt.Printf("  core cycles: %.1f%% committed, %.1f%% aborted, %.1f%% spill, %.1f%% stall\n",
		100*float64(st.CommittedCycles)/tot, 100*float64(st.AbortedCycles)/tot,
		100*float64(st.SpillCycles)/tot, 100*float64(st.StallCycles)/tot)
	fmt.Printf("  avg occupancy: task queue %.0f, commit queue %.0f\n",
		st.AvgTaskQueueOcc, st.AvgCommitQueueOcc)
	fmt.Printf("  bloom checks      %12d (VT compares: %d)\n", st.BloomChecks, st.VTCompares)
	fmt.Printf("  NoC GB/s per tile: mem %.2f, enqueue %.2f, abort %.2f, gvt %.2f\n",
		st.TrafficGBps(noc.ClassMem), st.TrafficGBps(noc.ClassEnqueue),
		st.TrafficGBps(noc.ClassAbort), st.TrafficGBps(noc.ClassGVT))
	fmt.Printf("  cache: %d loads, %d stores, %.1f%% L1 hits, %d mem accesses\n",
		st.Cache.Loads, st.Cache.Stores,
		100*float64(st.Cache.L1Hits)/float64(max64(st.Cache.Loads, 1)), st.Cache.MemAccesses)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
