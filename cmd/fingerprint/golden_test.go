package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/core"
)

// -update regenerates the golden corpus instead of diffing against it:
//
//	go test ./cmd/fingerprint -run TestGoldenFingerprints -update
var update = flag.Bool("update", false, "rewrite the golden fingerprint corpus")

// goldenCores is the pinned sweep: every registered app at tiny scale on
// 1-, 4-, 16- and 64-core machines (1 tile through 16 tiles).
var goldenCores = []int{1, 4, 16, 64}

// goldenSimWorkers are the tile-parallel shard counts pinned next to each
// serial cell. The simulator promises bit-identical Stats for every
// SimWorkers value, so these cells are the serial digests re-emitted with
// a "simworkers=N" tag — the test additionally asserts the bodies match
// in-run, and the corpus pins them so a future divergence that slips past
// the differential suite still diffs here.
var goldenSimWorkers = []int{2, 8}

// TestGoldenFingerprints recomputes the full-Stats digest of every
// registered app x core count at tiny scale and diffs it against the
// pinned corpus in testdata. Any unintentional change to simulated
// behaviour — timing, conflicts, placement, traffic, cache activity —
// shows up as a per-cell diff; intentional model changes regenerate the
// corpus with -update and show the delta in review.
func TestGoldenFingerprints(t *testing.T) {
	var lines []string
	for _, name := range bench.AppNames() {
		b, err := bench.New(name, bench.ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		for _, nc := range goldenCores {
			cell, err := cellLines(b, nc, core.DefaultConfig(nc))
			if err != nil {
				t.Fatalf("%s @%dc: %v", name, nc, err)
			}
			lines = append(lines, cell...)
			for _, sw := range goldenSimWorkers {
				cfg := core.DefaultConfig(nc)
				cfg.SimWorkers = sw
				par, err := cellLines(b, nc, cfg)
				if err != nil {
					t.Fatalf("%s @%dc simworkers=%d: %v", name, nc, sw, err)
				}
				if len(par) != len(cell) {
					t.Fatalf("%s @%dc simworkers=%d: %d digest lines, serial has %d",
						name, nc, sw, len(par), len(cell))
				}
				for i := range par {
					if par[i] != cell[i] {
						t.Errorf("%s @%dc simworkers=%d: digest diverges from serial\n  got  %s\n  want %s",
							name, nc, sw, par[i], cell[i])
					}
				}
				lines = append(lines, tagSimWorkers(par, sw)...)
			}
		}
	}
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "tiny.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d cells)", path, len(lines))
		return
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the corpus)", err)
	}
	want := string(raw)
	if got == want {
		return
	}
	// Report per-cell diffs, not a giant blob: each line is one (app,
	// cores) cell, so a localized model change reads as a short list.
	wantLines := strings.Split(strings.TrimSuffix(want, "\n"), "\n")
	n := 0
	for i, g := range lines {
		var w string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			n++
			if n <= 6 {
				t.Errorf("cell %d differs:\n  got  %s\n  want %s", i, g, w)
			}
		}
	}
	if extra := len(wantLines) - len(lines); extra > 0 {
		t.Errorf("%d golden cells missing from this run (app removed? run -update)", extra)
	}
	t.Errorf("%d of %d fingerprint cells changed; if the model change is intentional, regenerate with -update and include the diff in review", n, len(lines))
}
