// Command fingerprint runs every registered benchmark on the Swarm machine
// and prints a deterministic digest of the full Stats structure, one line
// per (app, cores) cell.
//
// Its purpose is refactor verification: any change to the simulator that is
// supposed to preserve simulated behaviour (data-structure swaps, host-side
// optimizations) must leave the fingerprint byte-identical. Changes to the
// timing model show up as cycle-count diffs, localized per app.
//
// Usage:
//
//	fingerprint [-scale tiny|small|medium|large] [-cores 1,4,16] [-apps all]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"hash"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/noc"
)

func main() {
	scaleFlag := flag.String("scale", "tiny", "input scale: tiny, small, medium or large")
	coresFlag := flag.String("cores", "1,4,16", "comma-separated core counts")
	appsFlag := flag.String("apps", "all", "comma-separated app names, or all")
	mapperFlag := flag.String("mapper", "random",
		"task-mapping policy: "+strings.Join(core.MapperNames(), ", "))
	backendFlag := flag.String("backend", "sim",
		"execution backend: "+strings.Join(core.BackendNames(), ", ")+
			"; native rt digests cover only the deterministic counters")
	simWorkersFlag := flag.Int("simworkers", 1,
		"shard each simulated machine across N goroutines; digests must stay byte-identical to -simworkers 1 (lines are tagged when N > 1)")
	flag.Parse()

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	if !core.ValidBackend(*backendFlag) {
		fatal(fmt.Errorf("unknown backend %q (valid: %s)", *backendFlag, strings.Join(sortStrings(core.BackendNames()), ", ")))
	}
	var cores []int
	for _, f := range strings.Split(*coresFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fatal(fmt.Errorf("bad -cores value %q: %w", f, err))
		}
		cores = append(cores, n)
	}
	names := bench.AppNames()
	if *appsFlag != "all" {
		names = strings.Split(*appsFlag, ",")
	}

	for _, name := range names {
		b, err := bench.New(name, scale)
		if err != nil {
			fatal(err)
		}
		for _, nc := range cores {
			cfg := core.DefaultConfig(nc)
			cfg.Mapper = *mapperFlag
			cfg.Backend = *backendFlag
			cfg.SimWorkers = *simWorkersFlag
			lines, err := cellLines(b, nc, cfg)
			if err != nil {
				fatal(fmt.Errorf("%s @%dc: %w", name, nc, err))
			}
			for _, l := range tagSimWorkers(lines, cfg.SimWorkers) {
				fmt.Println(l)
			}
		}
	}
}

// sortStrings returns a sorted copy for alphabetical option lists in
// error messages.
func sortStrings(names []string) []string {
	s := append([]string(nil), names...)
	sort.Strings(s)
	return s
}

// tagSimWorkers marks digest lines produced by a tile-parallel machine
// (simworkers > 1). The digest body is untouched: the simulator guarantees
// bit-identical Stats for every SimWorkers value, so a tagged line must
// equal its untagged twin up to the tag — which is exactly what the golden
// corpus pins.
func tagSimWorkers(lines []string, simWorkers int) []string {
	if simWorkers <= 1 {
		return lines
	}
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = fmt.Sprintf("%s simworkers=%d", l, simWorkers)
	}
	return out
}

// cellLines fingerprints one (app, cores) cell. Single-phase apps emit
// the cumulative digest; phased (session) apps emit one per-phase digest
// line first, then the cumulative digest of the whole session — a change
// that shifts work between phases while preserving totals still diffs.
func cellLines(b bench.Benchmark, nc int, cfg core.Config) ([]string, error) {
	if cfg.Backend != "" && cfg.Backend != "sim" {
		return nativeCellLines(b, nc, cfg)
	}
	if pb, ok := b.(bench.Phased); ok {
		phases, err := pb.RunSwarmPhases(cfg)
		if err != nil {
			return nil, err
		}
		var lines []string
		for _, ph := range phases {
			lines = append(lines, phaseDigest(b.Name(), nc, len(phases), ph))
		}
		return append(lines, digest(b.Name(), nc, phases[len(phases)-1].Cumulative)), nil
	}
	st, err := b.RunSwarm(cfg)
	if err != nil {
		return nil, err
	}
	return []string{digest(b.Name(), nc, st)}, nil
}

// nativeCellLines fingerprints one (app, cores) cell run on a native rt
// backend. The rt engines guarantee a deterministic committed schedule —
// commit and enqueue totals are fixed — but aborts, dequeues and retries
// depend on host scheduling, so only the deterministic counters go into
// the digest.
func nativeCellLines(b bench.Benchmark, nc int, cfg core.Config) ([]string, error) {
	if pb, ok := b.(bench.Phased); ok {
		phases, err := pb.RunSwarmPhases(cfg)
		if err != nil {
			return nil, err
		}
		var lines []string
		for _, ph := range phases {
			lines = append(lines, fmt.Sprintf("%s cores=%d backend=%s phase=%d/%d commits=%d enq=%d",
				b.Name(), nc, cfg.Backend, ph.Phase, len(phases), ph.Commits, ph.Enqueues))
		}
		return append(lines, nativeDigest(b.Name(), nc, phases[len(phases)-1].Cumulative)), nil
	}
	st, err := b.RunSwarm(cfg)
	if err != nil {
		return nil, err
	}
	return []string{nativeDigest(b.Name(), nc, st)}, nil
}

// nativeDigest is the rt-backend counterpart of digest.
func nativeDigest(app string, cores int, st core.Stats) string {
	return fmt.Sprintf("%s cores=%d backend=%s commits=%d enq=%d",
		app, cores, st.Backend, st.Commits, st.Enqueues)
}

// phaseDigest renders one phase's deterministic counters on one line.
func phaseDigest(app string, cores, nPhases int, ph core.PhaseStats) string {
	return fmt.Sprintf("%s cores=%d phase=%d/%d start=%d end=%d events=%d commits=%d aborts=%d enq=%d deq=%d nacks=%d "+
		"polAborts=%d spilled=%d commitCyc=%d abortCyc=%d spillCyc=%d stallCyc=%d gvt=%d tqOcc=%.6f cqOcc=%.6f traffic=%d",
		app, cores, ph.Phase, nPhases, ph.StartCycle, ph.EndCycle, ph.Events, ph.Commits, ph.Aborts,
		ph.Enqueues, ph.Dequeues, ph.NACKs, ph.PolicyAborts, ph.SpilledTasks,
		ph.CommittedCycles, ph.AbortedCycles, ph.SpillCycles, ph.StallCycles, ph.GVTUpdates,
		ph.AvgTaskQueueOcc, ph.AvgCommitQueueOcc, ph.TrafficBytes)
}

// digest renders every deterministic Stats field on one line, including
// the cache-hierarchy counters (a change that perturbs only cache-level
// accounting must not produce an identical fingerprint) and the mapper
// placement view — steal counts plus FNV digests of the per-tile
// occupancy and traffic vectors, so two runs that differ only in *where*
// tasks landed cannot fingerprint identically.
func digest(app string, cores int, st core.Stats) string {
	c := st.Cache
	return fmt.Sprintf("%s cores=%d events=%d cycles=%d commits=%d aborts=%d enq=%d deq=%d nacks=%d polAborts=%d spilled=%d "+
		"commitCyc=%d abortCyc=%d spillCyc=%d stallCyc=%d bloom=%d vtcmp=%d gvt=%d tqOcc=%.6f cqOcc=%.6f "+
		"trafMem=%d trafEnq=%d trafAbort=%d trafGVT=%d "+
		"ld=%d st=%d l1h=%d l2h=%d l3h=%d mem=%d canary=%d gchk=%d inval=%d wb=%d flash=%d stickyFilt=%d "+
		"mapper=%s stolen=%d tileOcc=%x tileTraf=%x",
		app, cores, st.Events, st.Cycles, st.Commits, st.Aborts, st.Enqueues, st.Dequeues, st.NACKs,
		st.PolicyAborts, st.SpilledTasks,
		st.CommittedCycles, st.AbortedCycles, st.SpillCycles, st.StallCycles,
		st.BloomChecks, st.VTCompares, st.GVTUpdates,
		st.AvgTaskQueueOcc, st.AvgCommitQueueOcc,
		st.TrafficBytes[noc.ClassMem], st.TrafficBytes[noc.ClassEnqueue],
		st.TrafficBytes[noc.ClassAbort], st.TrafficBytes[noc.ClassGVT],
		c.Loads, c.Stores, c.L1Hits, c.L2Hits, c.L3Hits, c.MemAccesses,
		c.CanaryFails, c.GlobalChecks, c.Invalidations, c.Writebacks,
		c.L1FlashClears, c.StickyChecksFiltered,
		st.Mapper, st.StolenTasks, tileOccDigest(st), tileTrafDigest(st))
}

// tileOccDigest folds the per-tile average queue occupancies into one
// FNV-1a word (floats are fingerprinted at micro-occupancy resolution).
func tileOccDigest(st core.Stats) uint64 {
	h := fnv.New64a()
	for i := range st.TileTaskQOcc {
		writeWord(h, uint64(st.TileTaskQOcc[i]*1e6))
		writeWord(h, uint64(st.TileCommitQOcc[i]*1e6))
	}
	return h.Sum64()
}

// tileTrafDigest folds the per-tile injected NoC bytes into one FNV-1a
// word.
func tileTrafDigest(st core.Stats) uint64 {
	h := fnv.New64a()
	for _, b := range st.TileTrafficBytes {
		writeWord(h, b)
	}
	return h.Sum64()
}

func writeWord(h hash.Hash64, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fingerprint:", err)
	os.Exit(1)
}
