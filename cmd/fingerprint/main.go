// Command fingerprint runs every registered benchmark on the Swarm machine
// and prints a deterministic digest of the full Stats structure, one line
// per (app, cores) cell.
//
// Its purpose is refactor verification: any change to the simulator that is
// supposed to preserve simulated behaviour (data-structure swaps, host-side
// optimizations) must leave the fingerprint byte-identical. Changes to the
// timing model show up as cycle-count diffs, localized per app.
//
// Usage:
//
//	fingerprint [-scale tiny|small|medium] [-cores 1,4,16] [-apps all]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/noc"
)

func main() {
	scaleFlag := flag.String("scale", "tiny", "input scale: tiny, small or medium")
	coresFlag := flag.String("cores", "1,4,16", "comma-separated core counts")
	appsFlag := flag.String("apps", "all", "comma-separated app names, or all")
	flag.Parse()

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	var cores []int
	for _, f := range strings.Split(*coresFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fatal(fmt.Errorf("bad -cores value %q: %w", f, err))
		}
		cores = append(cores, n)
	}
	names := bench.AppNames()
	if *appsFlag != "all" {
		names = strings.Split(*appsFlag, ",")
	}

	for _, name := range names {
		b, err := bench.New(name, scale)
		if err != nil {
			fatal(err)
		}
		for _, nc := range cores {
			st, err := b.RunSwarm(core.DefaultConfig(nc))
			if err != nil {
				fatal(fmt.Errorf("%s @%dc: %w", name, nc, err))
			}
			fmt.Println(digest(name, nc, st))
		}
	}
}

// digest renders every deterministic Stats field on one line, including
// the cache-hierarchy counters (a change that perturbs only cache-level
// accounting must not produce an identical fingerprint).
func digest(app string, cores int, st core.Stats) string {
	c := st.Cache
	return fmt.Sprintf("%s cores=%d events=%d cycles=%d commits=%d aborts=%d enq=%d deq=%d nacks=%d polAborts=%d spilled=%d "+
		"commitCyc=%d abortCyc=%d spillCyc=%d stallCyc=%d bloom=%d vtcmp=%d gvt=%d tqOcc=%.6f cqOcc=%.6f "+
		"trafMem=%d trafEnq=%d trafAbort=%d trafGVT=%d "+
		"ld=%d st=%d l1h=%d l2h=%d l3h=%d mem=%d canary=%d gchk=%d inval=%d wb=%d flash=%d stickyFilt=%d",
		app, cores, st.Events, st.Cycles, st.Commits, st.Aborts, st.Enqueues, st.Dequeues, st.NACKs,
		st.PolicyAborts, st.SpilledTasks,
		st.CommittedCycles, st.AbortedCycles, st.SpillCycles, st.StallCycles,
		st.BloomChecks, st.VTCompares, st.GVTUpdates,
		st.AvgTaskQueueOcc, st.AvgCommitQueueOcc,
		st.TrafficBytes[noc.ClassMem], st.TrafficBytes[noc.ClassEnqueue],
		st.TrafficBytes[noc.ClassAbort], st.TrafficBytes[noc.ClassGVT],
		c.Loads, c.Stores, c.L1Hits, c.L2Hits, c.L3Hits, c.MemAccesses,
		c.CanaryFails, c.GlobalChecks, c.Invalidations, c.Writebacks,
		c.L1FlashClears, c.StickyChecksFiltered)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fingerprint:", err)
	os.Exit(1)
}
