package main

import "testing"

func TestSortStrings(t *testing.T) {
	in := []string{"sim", "rt", "rt-conservative"}
	got := sortStrings(in)
	if got[0] != "rt" || got[1] != "rt-conservative" || got[2] != "sim" {
		t.Fatalf("sortStrings = %v", got)
	}
	if in[0] != "sim" {
		t.Fatal("sortStrings mutated its input")
	}
}
