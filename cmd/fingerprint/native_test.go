package main

import (
	"strings"
	"testing"

	"github.com/swarm-sim/swarm/internal/bench"
	"github.com/swarm-sim/swarm/internal/core"
)

// TestNativeCellsDeterministic exercises the rt-backend digest path:
// native cells carry only the counters the runtimes fix (commits and
// enqueues — aborts, dequeues and wall-clock depend on host
// scheduling), so recomputing a cell must reproduce it byte for byte.
// One single-phase app and one phased app cover both digest shapes.
func TestNativeCellsDeterministic(t *testing.T) {
	cases := []struct {
		app    string
		phased bool
	}{
		{"bfs", false},
		{"incsssp", true},
	}
	for _, tc := range cases {
		b, err := bench.New(tc.app, bench.ScaleTiny)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(4)
		cfg.Backend = "rt"
		first, err := cellLines(b, 4, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.app, err)
		}
		again, err := cellLines(b, 4, cfg)
		if err != nil {
			t.Fatalf("%s rerun: %v", tc.app, err)
		}
		if strings.Join(first, "\n") != strings.Join(again, "\n") {
			t.Errorf("%s: native digest not reproducible:\n%v\nvs\n%v", tc.app, first, again)
		}
		if tc.phased && len(first) < 2 {
			t.Fatalf("%s: %d digest lines, want per-phase lines plus the cumulative", tc.app, len(first))
		}
		for i, l := range first {
			if !strings.Contains(l, "backend=rt") || !strings.Contains(l, "commits=") {
				t.Errorf("%s line %d: malformed native digest %q", tc.app, i, l)
			}
			wantPhase := tc.phased && i < len(first)-1
			if got := strings.Contains(l, "phase="); got != wantPhase {
				t.Errorf("%s line %d: phase tag presence = %v, want %v (%q)", tc.app, i, got, wantPhase, l)
			}
		}
	}
}
