// oracle reproduces Table 1: the limit-study analysis of ordered irregular
// parallelism (§2.2) — maximum and window-bounded parallelism, task sizes
// and footprints, and the ideal-TLS parallelism of the sequential
// implementations.
//
// Usage:
//
//	oracle -scale small
//	oracle -scale medium -maxtasks 200000
//
// Per-app analyses run concurrently (-workers); output is identical for
// every worker count.
package main

import (
	"flag"
	"log"
	"os"
	"runtime"

	"github.com/swarm-sim/swarm/internal/harness"
)

func main() {
	scaleF := flag.String("scale", "small", "input scale: tiny, small, medium, large")
	maxTasks := flag.Int("maxtasks", 0, "bound the profiled task count (0 = all)")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent per-app analyses on the host")
	flag.Parse()

	scale, err := harness.ParseScale(*scaleF)
	if err != nil {
		log.Fatal(err)
	}
	suite := harness.NewSuite(scale)
	suite.SetWorkers(*workers)
	rows := suite.Table1(*maxTasks)
	harness.PrintTable1(os.Stdout, rows)
}
