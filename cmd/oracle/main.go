// oracle reproduces Table 1: the limit-study analysis of ordered irregular
// parallelism (§2.2) — maximum and window-bounded parallelism, task sizes
// and footprints, and the ideal-TLS parallelism of the sequential
// implementations.
//
// Usage:
//
//	oracle -scale small
//	oracle -scale medium -maxtasks 200000
package main

import (
	"flag"
	"log"
	"os"

	"github.com/swarm-sim/swarm/internal/harness"
)

func main() {
	scaleF := flag.String("scale", "small", "input scale: tiny, small, medium")
	maxTasks := flag.Int("maxtasks", 0, "bound the profiled task count (0 = all)")
	flag.Parse()

	var scale harness.Scale
	switch *scaleF {
	case "tiny":
		scale = harness.ScaleTiny
	case "small":
		scale = harness.ScaleSmall
	case "medium":
		scale = harness.ScaleMedium
	default:
		log.Fatalf("unknown scale %q", *scaleF)
	}
	suite := harness.NewSuite(scale)
	rows := suite.Table1(*maxTasks)
	harness.PrintTable1(os.Stdout, rows)
}
