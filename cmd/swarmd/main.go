// Command swarmd runs the Swarm simulator as a long-lived service: an
// HTTP/JSON API accepting simulation jobs and live phased sessions,
// executing them on a bounded worker pool with a deduplicating result
// cache. A second, admin-only listener carries net/http/pprof profiles
// and expvar operational counters; keep it off public networks.
//
// Serve (the default):
//
//	swarmd [-host 127.0.0.1] [-port 8080] [-admin-host 127.0.0.1] [-admin-port 6060]
//	       [-workers N] [-queue 64] [-sessions 8] [-drain-timeout 30s]
//
// Tools, for poking a running daemon without remembering pprof URLs:
//
//	swarmd tools heap    [-admin http://127.0.0.1:6060]  > heap.pprof
//	swarmd tools profile [-admin ...] [-seconds 10]      > cpu.pprof
//	swarmd tools vars    [-admin ...]
//
// SIGINT/SIGTERM drain gracefully: admission stops, accepted jobs finish
// (bounded by -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"github.com/swarm-sim/swarm/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swarmd: ")
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "tools" {
		if err := runTools(args[1:]); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runServe(args); err != nil {
		log.Fatal(err)
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("swarmd", flag.ExitOnError)
	var (
		host         = fs.String("host", "127.0.0.1", "API listen address")
		port         = fs.Int("port", 8080, "API listen port")
		adminHost    = fs.String("admin-host", "127.0.0.1", "admin (pprof/expvar) listen address")
		adminPort    = fs.Int("admin-port", 6060, "admin listen port (0 disables the admin listener)")
		workers      = fs.Int("workers", 0, "concurrent simulations (0 = number of CPUs)")
		queue        = fs.Int("queue", 64, "job queue depth; submissions past it get 503")
		sessions     = fs.Int("sessions", 8, "max live phased sessions")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (subcommands: tools)", fs.Arg(0))
	}

	srv := serve.New(serve.Config{Workers: *workers, QueueDepth: *queue, MaxSessions: *sessions})

	apiAddr := net.JoinHostPort(*host, strconv.Itoa(*port))
	apiLn, err := net.Listen("tcp", apiAddr)
	if err != nil {
		return fmt.Errorf("api listen: %w", err)
	}
	api := &http.Server{Handler: srv.Handler()}
	log.Printf("api listening on http://%s", apiLn.Addr())

	var admin *http.Server
	if *adminPort != 0 {
		adminAddr := net.JoinHostPort(*adminHost, strconv.Itoa(*adminPort))
		adminLn, err := net.Listen("tcp", adminAddr)
		if err != nil {
			apiLn.Close()
			return fmt.Errorf("admin listen: %w", err)
		}
		admin = &http.Server{Handler: srv.AdminHandler()}
		log.Printf("admin (pprof, expvar) on http://%s — do not expose publicly", adminLn.Addr())
		go func() {
			if err := admin.Serve(adminLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("admin server: %v", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		if err := api.Serve(apiLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return fmt.Errorf("api server: %w", err)
	case sig := <-sigc:
		log.Printf("received %s, draining (timeout %s)", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain order: stop the daemon's job admission first so in-flight work
	// finishes, then close the HTTP listeners.
	drainErr := srv.Shutdown(ctx)
	api.Shutdown(ctx)
	if admin != nil {
		admin.Shutdown(ctx)
	}
	if drainErr != nil {
		return fmt.Errorf("drain incomplete: %w", drainErr)
	}
	log.Print("drained cleanly")
	return nil
}

// runTools implements `swarmd tools <cmd>`: thin fetches against a running
// daemon's admin port, piping profiles to stdout for `go tool pprof`.
func runTools(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: swarmd tools {heap|profile|vars} [flags]")
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet("swarmd tools "+cmd, flag.ExitOnError)
	admin := fs.String("admin", "http://127.0.0.1:6060", "admin base URL of the running daemon")
	seconds := fs.Int("seconds", 10, "CPU profile duration (profile only)")
	fs.Parse(rest)

	var url string
	switch cmd {
	case "heap":
		url = *admin + "/debug/pprof/heap"
	case "profile":
		url = fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", *admin, *seconds)
	case "vars":
		url = *admin + "/debug/vars"
	default:
		return fmt.Errorf("unknown tools command %q (valid: heap, profile, vars)", cmd)
	}

	client := &http.Client{Timeout: time.Duration(*seconds+30) * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("is the daemon running? %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: %s: %s", url, resp.Status, body)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}
