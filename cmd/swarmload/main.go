// Command swarmload load-tests a running swarmd: concurrent clients
// submit simulation jobs and poll them to completion, reporting
// throughput and submit-to-done latency percentiles. Each job gets a
// distinct seed by default so the daemon's result cache cannot absorb the
// work; -reuse-seeds flips that to measure cache-hit throughput instead.
//
//	swarmload [-url http://127.0.0.1:8080] [-clients 8] [-jobs 64]
//	          [-app bfs] [-scale tiny] [-cores 4] [-mapper random]
//	          [-reuse-seeds] [-timeout 5m]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/swarm-sim/swarm/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swarmload: ")
	var (
		url        = flag.String("url", "http://127.0.0.1:8080", "swarmd API base URL")
		clients    = flag.Int("clients", 8, "concurrent clients")
		jobs       = flag.Int("jobs", 64, "total jobs to submit")
		app        = flag.String("app", "bfs", "benchmark to run")
		scale      = flag.String("scale", "tiny", "input scale")
		cores      = flag.Int("cores", 4, "simulated cores per job")
		mapper     = flag.String("mapper", "random", "task-mapping policy")
		reuseSeeds = flag.Bool("reuse-seeds", false, "submit identical specs so jobs hit the result cache")
		timeout    = flag.Duration("timeout", 5*time.Minute, "overall run deadline")
	)
	flag.Parse()

	// One spec per job, distinct seeds, so every job simulates; with
	// -reuse-seeds one spec is shared and only the first job computes.
	n := *jobs
	if *reuseSeeds {
		n = 1
	}
	specs := make([]serve.JobSpec, n)
	for i := range specs {
		specs[i] = serve.JobSpec{
			App: *app, Scale: *scale, Cores: *cores, Mapper: *mapper, Seed: int64(i + 1),
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	log.Printf("%d clients, %d jobs of %s/%s on %d cores against %s", *clients, *jobs, *app, *scale, *cores, *url)
	rep, err := serve.RunLoad(ctx, serve.LoadConfig{
		BaseURL: *url,
		Clients: *clients,
		Jobs:    *jobs,
		Specs:   specs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)
	if rep.Failed > 0 {
		log.Fatalf("%d of %d jobs failed", rep.Failed, rep.Jobs)
	}
}
