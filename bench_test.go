// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6). Each benchmark regenerates its table/figure on
// scaled-down inputs, prints the same rows/series the paper reports, and
// exposes the headline numbers as benchmark metrics.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Scale up (slower, closer to the paper's regime):
//
//	SWARM_SCALE=medium SWARM_MAXCORES=64 go test -bench=. -timeout 4h
package swarm_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"github.com/swarm-sim/swarm/internal/bloom"
	"github.com/swarm-sim/swarm/internal/core"
	"github.com/swarm-sim/swarm/internal/harness"
	"github.com/swarm-sim/swarm/internal/noc"
)

func benchScale() harness.Scale {
	switch os.Getenv("SWARM_SCALE") {
	case "tiny":
		return harness.ScaleTiny
	case "medium":
		return harness.ScaleMedium
	default:
		return harness.ScaleSmall
	}
}

func benchMaxCores() int {
	if v := os.Getenv("SWARM_MAXCORES"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return 16
}

func coreSweep() []int {
	out := []int{1}
	for c := 4; c <= benchMaxCores(); c *= 4 {
		out = append(out, c)
	}
	if out[len(out)-1] != benchMaxCores() {
		out = append(out, benchMaxCores())
	}
	return out
}

// Shared state: the scaling runs feed Figs 11, 12, 14, 15, 16 and Table 4,
// so they are computed once.
var (
	shMu      sync.Mutex
	shSuite   *harness.Suite
	shScaling []harness.ScalingResult
)

func sharedSuite(b *testing.B) *harness.Suite {
	b.Helper()
	shMu.Lock()
	defer shMu.Unlock()
	if shSuite == nil {
		shSuite = harness.NewSuite(benchScale())
	}
	return shSuite
}

func sharedScaling(b *testing.B) []harness.ScalingResult {
	s := sharedSuite(b)
	shMu.Lock()
	defer shMu.Unlock()
	if shScaling == nil {
		for _, bm := range s.Benchmarks {
			r, err := s.Scaling(bm, coreSweep())
			if err != nil {
				b.Fatal(err)
			}
			shScaling = append(shScaling, r)
		}
	}
	return shScaling
}

var printOnce sync.Map

func printFirst(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

// BenchmarkTable1 regenerates the parallelism limit study (Table 1).
func BenchmarkTable1(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows := s.Table1(0)
		printFirst("table1", func() { harness.PrintTable1(os.Stdout, rows) })
		b.ReportMetric(rows[1].MaxParallelism, "sssp-max-par")
		b.ReportMetric(rows[1].MaxTLS, "sssp-tls-par")
	}
}

// BenchmarkTable2 regenerates the hardware cost table (Table 2).
func BenchmarkTable2(b *testing.B) {
	cfg := core.DefaultConfig(64)
	for i := 0; i < b.N; i++ {
		perTile, perChip := cfg.TotalAreaMM2()
		printFirst("table2", func() { harness.PrintTable2(os.Stdout, cfg) })
		b.ReportMetric(perTile, "mm2/tile")
		b.ReportMetric(perChip, "mm2/chip")
	}
}

// BenchmarkTable4 reports serial run-times (Table 4's right column).
func BenchmarkTable4(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		printFirst("table4", func() {
			fmt.Printf("Table 4: serial run-times (%s scale)\n", benchScale())
		})
		for _, bm := range s.Benchmarks {
			cyc, err := s.Serial(bm, 1)
			if err != nil {
				b.Fatal(err)
			}
			printFirst("table4-"+bm.Name(), func() {
				fmt.Printf("  %-8s %12d cycles\n", bm.Name(), cyc)
			})
		}
	}
}

// BenchmarkTable5 regenerates the idealization study (Table 5).
func BenchmarkTable5(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		rows, err := s.Table5(benchMaxCores())
		if err != nil {
			b.Fatal(err)
		}
		printFirst("table5", func() { harness.PrintTable5(os.Stdout, rows, benchMaxCores()) })
		b.ReportMetric(rows[2].SelfRelative, "ideal-self-speedup")
	}
}

// BenchmarkFig11 regenerates the self-relative scaling figure.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := sharedScaling(b)
		var worst, best float64 = 1e9, 0
		for _, r := range results {
			self := r.SelfRelative()
			last := self[len(self)-1]
			if last < worst {
				worst = last
			}
			if last > best {
				best = last
			}
			printFirst("fig11-"+r.App, func() { harness.PrintScaling(os.Stdout, r) })
		}
		b.ReportMetric(worst, "min-self-speedup")
		b.ReportMetric(best, "max-self-speedup")
	}
}

// BenchmarkFig12 regenerates the Swarm vs serial vs software-parallel
// comparison.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := sharedScaling(b)
		for _, r := range results {
			vs := r.VsSerial()
			pv := r.ParallelVsSerial()
			last := len(vs) - 1
			printFirst("fig12-"+r.App, func() {
				fmt.Printf("Fig12 %s @%dc: swarm %.1fx vs serial", r.App, r.Points[last].Cores, vs[last])
				if pv[last] > 0 {
					fmt.Printf(", sw-parallel %.1fx (swarm/sw = %.1fx)", pv[last], vs[last]/pv[last])
				}
				fmt.Println()
			})
			if r.App == "sssp" {
				b.ReportMetric(vs[last], "sssp-vs-serial")
			}
		}
	}
}

// BenchmarkFig13 regenerates the silo warehouse sensitivity study.
func BenchmarkFig13(b *testing.B) {
	s := sharedSuite(b)
	txns := map[harness.Scale]int{
		harness.ScaleTiny: 60, harness.ScaleSmall: 200, harness.ScaleMedium: 800,
	}[benchScale()]
	for i := 0; i < b.N; i++ {
		pts, err := s.Fig13([]int{16, 4, 1}, benchMaxCores(), txns)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig13", func() { harness.PrintFig13(os.Stdout, pts, benchMaxCores()) })
		one := pts[len(pts)-1]
		b.ReportMetric(one.SwarmSpeedup, "swarm-1wh")
		b.ReportMetric(one.SwarmSpeedup/one.ParallelSpeedup, "swarm-vs-sw-1wh")
	}
}

// BenchmarkFig14 regenerates the cycle-breakdown figure.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := sharedScaling(b)
		var committedFrac float64
		for _, r := range results {
			st := r.Points[len(r.Points)-1].Stats
			committedFrac += float64(st.CommittedCycles) / float64(st.TotalCoreCycles())
			printFirst("fig14-"+r.App, func() { harness.PrintFig14(os.Stdout, r.App, r.Points) })
		}
		b.ReportMetric(committedFrac/float64(len(results)), "avg-committed-frac")
	}
}

// BenchmarkFig15 regenerates the queue occupancy figure.
func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := sharedScaling(b)
		printFirst("fig15", func() { harness.PrintFig15(os.Stdout, results) })
		var tq, cq float64
		for _, r := range results {
			st := r.Points[len(r.Points)-1].Stats
			tq += st.AvgTaskQueueOcc
			cq += st.AvgCommitQueueOcc
		}
		b.ReportMetric(tq/float64(len(results)), "avg-taskq-occ")
		b.ReportMetric(cq/float64(len(results)), "avg-commitq-occ")
	}
}

// BenchmarkFig16 regenerates the NoC traffic figure.
func BenchmarkFig16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := sharedScaling(b)
		printFirst("fig16", func() { harness.PrintFig16(os.Stdout, results) })
		var overhead float64
		for _, r := range results {
			st := r.Points[len(r.Points)-1].Stats
			mem := st.TrafficGBps(noc.ClassMem)
			rest := st.TrafficGBps(noc.ClassEnqueue) + st.TrafficGBps(noc.ClassAbort) + st.TrafficGBps(noc.ClassGVT)
			if mem > 0 {
				overhead += rest / mem
			}
		}
		b.ReportMetric(100*overhead/float64(len(results)), "swarm-traffic-%")
	}
}

// BenchmarkFig17a regenerates the commit queue size sweep.
func BenchmarkFig17a(b *testing.B) {
	s := sharedSuite(b)
	nc := benchMaxCores()
	totals := []int{2 * nc, 8 * nc, 16 * nc, 32 * nc, 0}
	for i := 0; i < b.N; i++ {
		pts, err := s.CommitQueueSweep(nc, totals)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig17a", func() {
			harness.PrintSweep(os.Stdout, "Fig 17(a): perf vs commit queue entries", s.AppNames(), pts)
		})
		// Small commit queues should hurt (paper: <512 degrades a lot).
		b.ReportMetric(pts[0].Perf[1], "sssp-smallest-cq")
	}
}

// BenchmarkFig17b regenerates the Bloom filter configuration sweep.
func BenchmarkFig17b(b *testing.B) {
	s := sharedSuite(b)
	cfgs := []bloom.Config{
		{Bits: 256, Ways: 4},
		{Bits: 1024, Ways: 4},
		{Bits: 2048, Ways: 8},
		{Precise: true},
	}
	for i := 0; i < b.N; i++ {
		pts, err := s.BloomSweep(benchMaxCores(), cfgs)
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig17b", func() {
			harness.PrintSweep(os.Stdout, "Fig 17(b): perf vs signature config", s.AppNames(), pts)
		})
		// Default filters should be close to precise (paper: within 10%).
		last := len(s.Benchmarks) - 1
		b.ReportMetric(pts[2].Perf[last]/pts[3].Perf[last], "silo-2048b-vs-precise")
	}
}

// BenchmarkFig18 regenerates the astar execution trace case study.
func BenchmarkFig18(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		st, err := s.Fig18()
		if err != nil {
			b.Fatal(err)
		}
		printFirst("fig18", func() { harness.PrintFig18(os.Stdout, st, 20) })
		b.ReportMetric(float64(len(st.Trace)), "trace-samples")
	}
}

// BenchmarkGVTPeriod regenerates the §6.4 GVT period sensitivity study.
func BenchmarkGVTPeriod(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		pts, err := s.GVTSweep(benchMaxCores(), []uint64{50, 200, 800})
		if err != nil {
			b.Fatal(err)
		}
		printFirst("gvt", func() {
			harness.PrintSweep(os.Stdout, "GVT period sweep (perf vs default)", s.AppNames(), pts)
		})
		// The paper reports <= 3% sensitivity across this range.
		var worst float64 = 1
		for _, p := range pts {
			for _, v := range p.Perf {
				if v < worst {
					worst = v
				}
			}
		}
		b.ReportMetric(worst, "worst-gvt-perf")
	}
}

// BenchmarkCanary regenerates the §6.3 canary precision study.
func BenchmarkCanary(b *testing.B) {
	s := sharedSuite(b)
	for i := 0; i < b.N; i++ {
		red, sp, err := s.CanaryStudy(benchMaxCores())
		if err != nil {
			b.Fatal(err)
		}
		printFirst("canary", func() {
			fmt.Printf("Canary study: per-line canaries reduce global checks by %.1f%%, gmean speedup %.3fx\n",
				100*red, sp)
		})
		b.ReportMetric(100*red, "check-reduction-%")
		b.ReportMetric(sp, "gmean-speedup")
	}
}
