package main

import (
	"testing"

	"github.com/swarm-sim/swarm/examples/internal/extest"
)

func TestLogicsimOutput(t *testing.T) {
	// The ripple-carry adder must produce the right sum from the right
	// netlist, and the event simulation must commit gate events.
	extest.ExpectOutput(t, main,
		"11 + 6 + 1 = 18", "69 NAND gates", "gate events committed")
}
