// logicsim: an event-driven digital logic simulator on Swarm — the des
// workload pattern (§2.2). Tasks are signal toggles at gates, timestamped
// with simulated time; a toggle that changes a gate's output schedules its
// fanout one gate-delay later. Swarm executes events from different parts
// of the circuit speculatively in parallel while preserving time order.
//
// The circuit is a 4-bit ripple-carry adder built from NAND gates only.
//
//	go run ./examples/logicsim
package main

import (
	"fmt"
	"log"

	swarm "github.com/swarm-sim/swarm"
)

// gate is one NAND in the netlist (host-side structure; values live in
// guest memory).
type gate struct {
	a, b   int // fanin gate ids
	fanout []int
}

type netlist struct {
	gates  []gate
	inputs []int
}

// input adds an input "gate" (value driven by the stimulus).
func (n *netlist) input() int {
	id := len(n.gates)
	n.gates = append(n.gates, gate{a: -1, b: -1})
	n.inputs = append(n.inputs, id)
	return id
}

// nand adds a NAND gate.
func (n *netlist) nand(a, b int) int {
	id := len(n.gates)
	n.gates = append(n.gates, gate{a: a, b: b})
	n.gates[a].fanout = append(n.gates[a].fanout, id)
	n.gates[b].fanout = append(n.gates[b].fanout, id)
	return id
}

// xor from 4 NANDs.
func (n *netlist) xor(a, b int) int {
	m := n.nand(a, b)
	return n.nand(n.nand(a, m), n.nand(b, m))
}

// and + or from NANDs.
func (n *netlist) and(a, b int) int { m := n.nand(a, b); return n.nand(m, m) }
func (n *netlist) or(a, b int) int  { return n.nand(n.nand(a, a), n.nand(b, b)) }

// fullAdder returns (sum, cout).
func (n *netlist) fullAdder(a, b, cin int) (int, int) {
	axb := n.xor(a, b)
	sum := n.xor(axb, cin)
	cout := n.or(n.and(a, b), n.and(axb, cin))
	return sum, cout
}

func main() {
	var nl netlist
	const bits = 4
	a := make([]int, bits)
	b := make([]int, bits)
	for i := range a {
		a[i] = nl.input()
		b[i] = nl.input()
	}
	cin := nl.input()
	sums := make([]int, bits)
	c := cin
	for i := 0; i < bits; i++ {
		sums[i], c = nl.fullAdder(a[i], b[i], c)
	}
	cout := c

	// Stimulus: compute 11 + 6 + 1.
	av, bv, cv := uint64(11), uint64(6), uint64(1)

	// Power-on settling: compute the circuit's quiescent state with all
	// inputs at 0 (NAND(0,0)=1, so all-zeros is not a valid state). Gates
	// were created in topological order, so one pass suffices.
	quiescent := make([]uint64, len(nl.gates))
	for g, ga := range nl.gates {
		if ga.a >= 0 {
			quiescent[g] = 1 &^ (quiescent[ga.a] & quiescent[ga.b])
		}
	}

	var vals swarm.Words // gate output values
	app := swarm.App{
		Build: func(bld *swarm.Builder) []swarm.Task {
			vals = bld.NewWords(uint64(len(nl.gates)))
			vals.Copy(quiescent)
			// eval(gate) at time ts: recompute from fanin values; on
			// change, toggle fanout at ts+1.
			var eval swarm.FnID
			eval = bld.Fn("eval", func(e swarm.TaskEnv) {
				g := e.Arg(0)
				ga := nl.gates[g]
				va := e.Load(vals.Addr(uint64(ga.a)))
				vb := e.Load(vals.Addr(uint64(ga.b)))
				nv := 1 &^ (va & vb) // NAND
				e.Work(2)
				if e.Load(vals.Addr(g)) == nv {
					return
				}
				e.Store(vals.Addr(g), nv)
				for _, f := range ga.fanout {
					e.Enqueue(eval, e.Timestamp()+1, uint64(f))
				}
			})
			// set(input, value) at time ts.
			set := bld.Fn("set", func(e swarm.TaskEnv) {
				g, v := e.Arg(0), e.Arg(1)
				if e.Load(vals.Addr(g)) == v {
					return
				}
				e.Store(vals.Addr(g), v)
				for _, f := range nl.gates[g].fanout {
					e.Enqueue(eval, e.Timestamp()+1, uint64(f))
				}
			})

			var roots []swarm.Task
			drive := func(g int, v uint64) {
				roots = append(roots, swarm.Task{Fn: set, TS: 0, Args: [3]uint64{uint64(g), v}})
			}
			for i := 0; i < bits; i++ {
				drive(a[i], av>>i&1)
				drive(b[i], bv>>i&1)
			}
			drive(cin, cv)
			return roots
		},
	}

	res, err := swarm.Run(swarm.DefaultConfig(8), app)
	if err != nil {
		log.Fatal(err)
	}

	var sum uint64
	for i := 0; i < bits; i++ {
		sum |= res.Load(vals.Addr(uint64(sums[i]))) << i
	}
	sum |= res.Load(vals.Addr(uint64(cout))) << bits
	fmt.Printf("%d + %d + %d = %d (circuit of %d NAND gates)\n", av, bv, cv, sum, len(nl.gates))
	fmt.Printf("simulated: %d cycles, %d gate events committed, %d aborted\n",
		res.Stats.Cycles, res.Stats.Commits, res.Stats.Aborts)
	if sum != av+bv+cv {
		log.Fatalf("adder produced %d, want %d", sum, av+bv+cv)
	}
}
