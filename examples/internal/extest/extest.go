// Package extest is the shared harness for the example smoke tests: it
// runs an example's main() with stdout captured and asserts the printed
// results, so refactors to the public swarm API cannot silently break
// the examples.
package extest

import (
	"io"
	"os"
	"strings"
	"testing"
)

// CaptureMain runs mainFn with os.Stdout redirected into a pipe and
// returns everything it printed.
func CaptureMain(t *testing.T, mainFn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	mainFn()
	w.Close()
	return <-done
}

// ExpectOutput runs mainFn and asserts that every want substring appears
// in its output.
func ExpectOutput(t *testing.T, mainFn func(), wants ...string) {
	t.Helper()
	out := CaptureMain(t, mainFn)
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
