// pathfinder: A* route search over a procedurally generated road grid —
// the astar workload (§2.2). Task timestamps are f = g + h scores, so
// Swarm explores the most promising frontier first, in parallel, and the
// first task to settle the target has found the optimal route.
//
//	go run ./examples/pathfinder
package main

import (
	"fmt"
	"log"
	"math/rand"

	swarm "github.com/swarm-sim/swarm"
)

const side = 24 // side x side grid

func id(r, c int) uint64     { return uint64(r*side + c) }
func rc(n uint64) (int, int) { return int(n) / side, int(n) % side }

// heuristic: 4 x Manhattan distance (admissible: every step costs >= 4).
func heur(n, target uint64) uint64 {
	r1, c1 := rc(n)
	r2, c2 := rc(target)
	d := 0
	if r1 > r2 {
		d += r1 - r2
	} else {
		d += r2 - r1
	}
	if c1 > c2 {
		d += c1 - c2
	} else {
		d += c2 - c1
	}
	return uint64(4 * d)
}

func main() {
	rng := rand.New(rand.NewSource(7))
	// Random per-step costs in [1, 9] (terrain).
	cost := make([][4]uint64, side*side)
	for i := range cost {
		for j := 0; j < 4; j++ {
			cost[i][j] = uint64(rng.Intn(3)) + 4
		}
	}
	neighbors := func(n uint64) [][2]uint64 {
		r, c := rc(n)
		var out [][2]uint64
		dirs := [4][2]int{{0, 1}, {1, 0}, {0, -1}, {-1, 0}}
		for j, d := range dirs {
			nr, nc := r+d[0], c+d[1]
			if nr >= 0 && nr < side && nc >= 0 && nc < side {
				out = append(out, [2]uint64{id(nr, nc), cost[n][j]})
			}
		}
		return out
	}
	start, target := id(0, 0), id(side-1, side-1)

	var dist swarm.Words
	app := swarm.App{
		Build: func(b *swarm.Builder) []swarm.Task {
			dist = b.NewWords(side * side)
			dist.Fill(swarm.Unvisited)
			var visit swarm.FnID
			visit = b.Fn("visit", func(e swarm.TaskEnv) {
				node, g := e.Arg(0), e.Arg(1)
				if e.Load(dist.Addr(node)) != swarm.Unvisited {
					return
				}
				if node != target && e.Load(dist.Addr(target)) != swarm.Unvisited {
					return // target settled: prune
				}
				e.Store(dist.Addr(node), g)
				if node == target {
					return
				}
				for _, nb := range neighbors(node) {
					g2 := g + nb[1]
					e.Work(6) // heuristic arithmetic
					e.Enqueue(visit, g2+heur(nb[0], target), nb[0], g2)
				}
			})
			return []swarm.Task{{Fn: visit, TS: heur(start, target), Args: [3]uint64{start, 0}}}
		},
	}

	res, err := swarm.Run(swarm.DefaultConfig(16), app)
	if err != nil {
		log.Fatal(err)
	}
	best := res.Load(dist.Addr(target))
	if best == swarm.Unvisited {
		log.Fatal("no route found")
	}
	settled := 0
	for _, d := range res.Words(dist.Base(), dist.Len()) {
		if d != swarm.Unvisited {
			settled++
		}
	}
	fmt.Printf("optimal route cost %d over a %dx%d grid\n", best, side, side)
	fmt.Printf("A* settled %d of %d nodes (the heuristic pruned the rest)\n", settled, side*side)
	fmt.Printf("simulated: %d cycles, %d tasks committed, %d aborted\n",
		res.Stats.Cycles, res.Stats.Commits, res.Stats.Aborts)
}
