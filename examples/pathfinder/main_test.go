package main

import (
	"testing"

	"github.com/swarm-sim/swarm/examples/internal/extest"
)

func TestPathfinderOutput(t *testing.T) {
	// The example checks optimality against host-side Dijkstra itself
	// (log.Fatal on mismatch); assert the route cost and the A* pruning
	// signature (settles fewer nodes than the grid holds).
	extest.ExpectOutput(t, main,
		"optimal route cost 200", "24x24 grid", "the heuristic pruned the rest")
}
