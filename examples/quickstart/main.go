// Quickstart: single-source shortest paths on a small weighted graph —
// the paper's motivating example (Fig 1) — in ~60 lines of Swarm code.
//
// Each task visits one node; its timestamp is the tentative distance.
// There is no priority queue and no locking: order comes from timestamps,
// and the hardware speculates to run tasks in parallel.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	swarm "github.com/swarm-sim/swarm"
)

func main() {
	// The graph from Fig 1(b): A=0, B=1, C=2, D=3, E=4.
	type edge struct {
		to uint64
		w  uint64
	}
	adj := [][]edge{
		0: {{1, 3}, {2, 2}}, // A -> B(3), C(2)
		1: {{3, 1}, {4, 2}}, // B -> D(1), E(2)
		2: {{1, 2}, {3, 4}}, // C -> B(2), D(4)
		3: {{4, 3}},         // D -> E(3)
		4: {},               // E
	}
	names := []string{"A", "B", "C", "D", "E"}

	var dist swarm.Words // the distance array
	app := swarm.App{
		Build: func(b *swarm.Builder) []swarm.Task {
			dist = b.NewWords(uint64(len(adj)))
			dist.Fill(swarm.Unvisited)
			// visit(node): the first task to reach a node (smallest
			// timestamp = shortest distance) settles it and relaxes its
			// out-edges; later tasks see it settled and do nothing.
			var visit swarm.FnID
			visit = b.Fn("visit", func(e swarm.TaskEnv) {
				node := e.Arg(0)
				if e.Load(dist.Addr(node)) != swarm.Unvisited {
					return
				}
				e.Store(dist.Addr(node), e.Timestamp())
				for _, ed := range adj[node] {
					e.Enqueue(visit, e.Timestamp()+ed.w, ed.to)
				}
			})
			return []swarm.Task{{Fn: visit, TS: 0, Args: [3]uint64{0}}}
		},
	}

	res, err := swarm.Run(swarm.DefaultConfig(4), app)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shortest distances from A:")
	for i, name := range names {
		fmt.Printf("  %s: %d\n", name, res.Load(dist.Addr(uint64(i))))
	}
	fmt.Printf("\nsimulated: %d cycles, %d tasks committed, %d aborted speculations\n",
		res.Stats.Cycles, res.Stats.Commits, res.Stats.Aborts)
}
