package main

import (
	"testing"

	"github.com/swarm-sim/swarm/examples/internal/extest"
)

func TestQuickstartOutput(t *testing.T) {
	// Fig 1(b)'s shortest distances from A.
	extest.ExpectOutput(t, main,
		"A: 0", "B: 3", "C: 2", "D: 4", "E: 5", "tasks committed")
}
