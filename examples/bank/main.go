// bank: an ordered in-memory transaction ledger — the silo workload
// pattern (§5). Each transfer must appear to execute atomically and in
// ledger order. On Swarm, a transfer decomposes into three tiny tasks
// (debit, credit, audit-log append) inside the transfer's private
// timestamp range: ranges are disjoint, so atomicity and order come for
// free, while tasks from different transfers run speculatively in
// parallel — no locks anywhere.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"math/rand"

	swarm "github.com/swarm-sim/swarm"
)

const (
	nAccounts  = 64
	nTransfers = 300
	initBal    = 1000
)

type transfer struct {
	from, to uint64
	amount   uint64
}

func main() {
	rng := rand.New(rand.NewSource(42))
	transfers := make([]transfer, nTransfers)
	for i := range transfers {
		t := transfer{
			from:   uint64(rng.Intn(nAccounts)),
			to:     uint64(rng.Intn(nAccounts)),
			amount: uint64(rng.Intn(50)) + 1,
		}
		for t.to == t.from {
			t.to = uint64(rng.Intn(nAccounts))
		}
		transfers[i] = t
	}

	var balances, logBase, logLen uint64
	app := swarm.App{
		Build: func(b *swarm.Builder) []swarm.Task {
			// Accounts padded to one cache line each: transfers touching
			// different accounts never conflict. (A stride-8 Words view
			// would also work; the line padding is the point here.)
			balances = b.Alloc(nAccounts * 64)
			for i := uint64(0); i < nAccounts; i++ {
				b.Store(balances+i*64, initBal)
			}
			logBase = b.AllocWords(nTransfers)
			logLen = b.AllocWords(1)

			// Tasks of transfer i run at timestamps [i*4, i*4+3].
			var credit, audit swarm.FnID
			debit := b.Fn("debit", func(e swarm.TaskEnv) {
				i := e.Arg(0)
				t := transfers[i]
				bal := e.Load(balances + t.from*64)
				if bal < t.amount {
					return // insufficient funds: abandon the transfer
				}
				e.Store(balances+t.from*64, bal-t.amount)
				e.Enqueue(credit, e.Timestamp()+1, i)
				e.Enqueue(audit, e.Timestamp()+2, i)
			})
			credit = b.Fn("credit", func(e swarm.TaskEnv) {
				i := e.Arg(0)
				t := transfers[i]
				e.Store(balances+t.to*64, e.Load(balances+t.to*64)+t.amount)
			})
			audit = b.Fn("audit", func(e swarm.TaskEnv) {
				i := e.Arg(0)
				n := e.Load(logLen)
				e.Store(logLen, n+1)
				e.Store(logBase+n*8, i)
			})

			roots := make([]swarm.Task, nTransfers)
			for i := range roots {
				roots[i] = swarm.Task{Fn: debit, TS: uint64(i) * 4, Args: [3]uint64{uint64(i)}}
			}
			return roots
		},
	}

	res, err := swarm.Run(swarm.DefaultConfig(16), app)
	if err != nil {
		log.Fatal(err)
	}

	// Verify conservation of money and audit-log order.
	var total uint64
	for i := uint64(0); i < nAccounts; i++ {
		total += res.Load(balances + i*64)
	}
	if total != nAccounts*initBal {
		log.Fatalf("money not conserved: %d != %d", total, nAccounts*initBal)
	}
	n := res.Load(logLen)
	for k := uint64(1); k < n; k++ {
		if res.Load(logBase+k*8) <= res.Load(logBase+(k-1)*8) {
			log.Fatalf("audit log out of order at %d", k)
		}
	}
	fmt.Printf("%d transfers over %d accounts: money conserved (%d), %d audited in order\n",
		nTransfers, nAccounts, total, n)
	fmt.Printf("simulated: %d cycles on 16 cores, %d tasks committed, %d aborted, no locks\n",
		res.Stats.Cycles, res.Stats.Commits, res.Stats.Aborts)
}
