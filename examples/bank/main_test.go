package main

import (
	"testing"

	"github.com/swarm-sim/swarm/examples/internal/extest"
)

func TestBankOutput(t *testing.T) {
	// The example verifies conservation of money and audit-log order
	// itself (log.Fatal on failure); assert its verdict and totals.
	extest.ExpectOutput(t, main,
		"money conserved (64000)", "300 audited in order", "no locks")
}
