package swarm_test

import (
	"fmt"
	"log"

	swarm "github.com/swarm-sim/swarm"
)

// Example is the package quickstart: single-source shortest paths on the
// paper's Fig 1 graph in a few lines of Swarm code. Each task visits one
// node; its timestamp is the tentative distance. There is no priority
// queue and no locking — order comes from timestamps, and the hardware
// speculates to run tasks in parallel.
//
// Being a godoc Example, this code is compiled and its output checked by
// go test: if the public API drifts, the quickstart breaks loudly instead
// of rotting in a comment.
func Example() {
	// The graph from Fig 1(b): A=0, B=1, C=2, D=3, E=4.
	type edge struct{ to, w uint64 }
	adj := [][]edge{
		0: {{1, 3}, {2, 2}}, // A -> B(3), C(2)
		1: {{3, 1}, {4, 2}}, // B -> D(1), E(2)
		2: {{1, 2}, {3, 4}}, // C -> B(2), D(4)
		3: {{4, 3}},         // D -> E(3)
		4: {},               // E
	}

	var dist swarm.Words
	app := swarm.App{
		Build: func(b *swarm.Builder) []swarm.Task {
			dist = b.NewWords(uint64(len(adj)))
			dist.Fill(swarm.Unvisited)
			// visit(node): the first task to reach a node (smallest
			// timestamp = shortest distance) settles it and relaxes its
			// out-edges; later tasks see it settled and do nothing.
			var visit swarm.FnID
			visit = b.Fn("visit", func(e swarm.TaskEnv) {
				node := e.Arg(0)
				if e.Load(dist.Addr(node)) != swarm.Unvisited {
					return
				}
				e.Store(dist.Addr(node), e.Timestamp())
				for _, ed := range adj[node] {
					e.Enqueue(visit, e.Timestamp()+ed.w, ed.to)
				}
			})
			return []swarm.Task{{Fn: visit, TS: 0, Args: [3]uint64{0}}}
		},
	}

	res, err := swarm.Run(swarm.DefaultConfig(4), app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distances:", res.Words(dist.Base(), dist.Len()))
	// Output:
	// distances: [0 3 2 4 5]
}

// ExampleNewSim shows phased (incremental) execution through a session:
// run a workload to quiescence, mutate its inputs at setup cost, inject a
// new batch of root tasks, and run again — the machine, its guest memory
// and its clock carry over, and per-phase statistics come back from each
// RunToQuiescence.
func ExampleNewSim() {
	var cells swarm.Words
	var bump swarm.FnID
	app := swarm.App{
		Build: func(b *swarm.Builder) []swarm.Task {
			cells = b.NewWords(4)
			bump = b.Fn("bump", func(e swarm.TaskEnv) {
				a := cells.Addr(e.Arg(0))
				e.Store(a, e.Load(a)+1)
			})
			// Phase 1: one task per cell.
			return []swarm.Task{
				{Fn: bump, TS: 0, Args: [3]uint64{0}},
				{Fn: bump, TS: 1, Args: [3]uint64{1}},
				{Fn: bump, TS: 2, Args: [3]uint64{2}},
				{Fn: bump, TS: 3, Args: [3]uint64{3}},
			}
		},
	}

	sim, err := swarm.NewSim(swarm.DefaultConfig(4), app)
	if err != nil {
		log.Fatal(err)
	}
	p1, err := sim.RunToQuiescence()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: %d commits\n", p1.Commits)

	// Between phases: setup-cost mutation plus a second batch of roots.
	sim.Mem().Store(cells.Addr(0), 100)
	if err := sim.Enqueue(
		swarm.Task{Fn: bump, TS: 0, Args: [3]uint64{0}},
		swarm.Task{Fn: bump, TS: 1, Args: [3]uint64{0}},
	); err != nil {
		log.Fatal(err)
	}
	p2, err := sim.RunToQuiescence()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: %d commits\n", p2.Commits)

	res := sim.Finish()
	fmt.Println("cells:", res.Words(cells.Base(), cells.Len()))
	fmt.Printf("total commits: %d over %d phases\n",
		res.Stats.Commits, len(sim.Phases()))
	// Output:
	// phase 1: 4 commits
	// phase 2: 2 commits
	// cells: [102 1 1 1]
	// total commits: 6 over 2 phases
}
